package diag

import (
	"strings"
	"testing"

	"nomad/internal/metrics"
)

func TestRankDeltas(t *testing.T) {
	a := map[string]float64{"x": 10, "y": 5, "gone": 1, "same": 3}
	b := map[string]float64{"x": 20, "y": 4, "new": 2, "same": 3}
	deltas, added, removed := RankDeltas(a, b)
	if len(added) != 1 || added[0] != "new" {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != "gone" {
		t.Errorf("removed = %v", removed)
	}
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v, want 2 (equal metric dropped)", deltas)
	}
	// x: |10|/20 = 0.5 rel; y: 1/5 = 0.2 rel — x ranks first.
	if deltas[0].Name != "x" || deltas[0].Delta != 10 || deltas[0].Rel != 0.5 {
		t.Errorf("deltas[0] = %+v", deltas[0])
	}
	if deltas[1].Name != "y" || deltas[1].Delta != -1 {
		t.Errorf("deltas[1] = %+v", deltas[1])
	}
}

func TestRankDeltasZeroSide(t *testing.T) {
	deltas, _, _ := RankDeltas(map[string]float64{"z": 0}, map[string]float64{"z": 4})
	if len(deltas) != 1 || deltas[0].Rel != 1 {
		t.Errorf("zero-to-nonzero rel = %+v, want Rel 1", deltas)
	}
}

// digestChain builds a chain from raw windows.
func digestChain(cycles []uint64, digests []string) *metrics.DigestChain {
	return &metrics.DigestChain{Algo: metrics.DigestAlgo, Interval: 100, Cycles: cycles, Digests: digests}
}

func TestDiffDigests(t *testing.T) {
	a := digestChain([]uint64{100, 200, 300}, []string{"aa", "bb", "cc"})
	same := digestChain([]uint64{100, 200, 300}, []string{"aa", "bb", "cc"})
	if d := DiffDigests(a, same); !d.Identical() || d.FirstDivergent != -1 {
		t.Errorf("identical chains: %+v", d)
	}

	div := digestChain([]uint64{100, 200, 300}, []string{"aa", "xx", "yy"})
	d := DiffDigests(a, div)
	if d.Identical() || d.FirstDivergent != 1 {
		t.Fatalf("divergence at 1: %+v", d)
	}
	if d.WindowStart != 100 || d.WindowEnd != 200 {
		t.Errorf("window bounds = %d..%d, want 100..200", d.WindowStart, d.WindowEnd)
	}
	if d.DigestA != "bb" || d.DigestB != "xx" {
		t.Errorf("digests = %s vs %s", d.DigestA, d.DigestB)
	}

	// Strict prefix: divergence at the shorter length, window end from the
	// longer chain, one digest empty.
	prefix := digestChain([]uint64{100}, []string{"aa"})
	d = DiffDigests(a, prefix)
	if d.FirstDivergent != 1 || d.WindowEnd != 200 || d.DigestB != "" || d.DigestA != "bb" {
		t.Errorf("prefix diff: %+v", d)
	}

	// Nil chains are empty; empty vs empty is identical.
	if d := DiffDigests(nil, nil); !d.Identical() {
		t.Errorf("nil vs nil: %+v", d)
	}
	if d := DiffDigests(nil, prefix); d.FirstDivergent != 0 || d.WindowEnd != 100 {
		t.Errorf("nil vs chain: %+v", d)
	}
}

func timeline(cycles []uint64, cols map[string][]float64) *metrics.TimelineSnapshot {
	return &metrics.TimelineSnapshot{Interval: 100, Cycles: cycles, Metrics: cols}
}

func TestDiffTimelines(t *testing.T) {
	a := timeline([]uint64{100, 200}, map[string][]float64{
		"ipc": {1.0, 1.1}, "old": {5, 5},
	})
	b := timeline([]uint64{100, 200}, map[string][]float64{
		"ipc": {1.0, 1.3}, "new": {7, 7},
	})
	d := DiffTimelines(a, b)
	if d.Identical() {
		t.Fatal("differing timelines reported identical")
	}
	if d.FirstDivergent != 1 || d.CycleEnd != 200 {
		t.Errorf("divergence = window %d end %d, want 1/200", d.FirstDivergent, d.CycleEnd)
	}
	if len(d.Added) != 1 || d.Added[0] != "new" || len(d.Removed) != 1 || d.Removed[0] != "old" {
		t.Errorf("added/removed = %v/%v", d.Added, d.Removed)
	}
	if len(d.Columns) != 1 || d.Columns[0].Name != "ipc" {
		t.Errorf("columns = %+v", d.Columns)
	}

	// Same values, same columns: identical.
	if d := DiffTimelines(a, a); !d.Identical() {
		t.Errorf("self-diff: %+v", d)
	}

	// Window-count mismatch alone diverges at the shorter length.
	short := timeline([]uint64{100}, map[string][]float64{"ipc": {1.0}, "old": {5}})
	d = DiffTimelines(a, short)
	if d.FirstDivergent != 1 || d.CycleEnd != 200 {
		t.Errorf("prefix timeline: %+v", d)
	}

	// Nil timelines are empty and identical to each other.
	if d := DiffTimelines(nil, nil); !d.Identical() {
		t.Errorf("nil vs nil: %+v", d)
	}
}

func snapshot(cycles uint64, counters map[string]uint64) *metrics.Snapshot {
	return &metrics.Snapshot{Cycles: cycles, Counters: counters}
}

func TestDiffSnapshots(t *testing.T) {
	a := snapshot(1000, map[string]uint64{"hits": 50, "misses": 10})
	a.Gauges = map[string]float64{"rate": 0.5}
	a.Histograms = map[string]metrics.HistogramSnapshot{"lat": {Count: 4, Sum: 40}}
	b := snapshot(1000, map[string]uint64{"hits": 60, "misses": 10})
	b.Gauges = map[string]float64{"rate": 0.5}
	b.Histograms = map[string]metrics.HistogramSnapshot{"lat": {Count: 4, Sum: 44}}

	d := DiffSnapshots(a, b)
	if d.Identical() {
		t.Fatal("differing snapshots reported identical")
	}
	names := map[string]bool{}
	for _, md := range d.Deltas {
		names[md.Name] = true
	}
	if !names["hits"] || !names["lat:sum"] || names["misses"] || names["rate"] || names["lat:count"] {
		t.Errorf("delta names = %v", names)
	}
	if d.Digests != nil || d.Timeline != nil {
		t.Error("digest/timeline diffs present without captures")
	}
	if d.FirstDivergentInterval() != -1 {
		t.Error("interval localization without captures")
	}

	if d := DiffSnapshots(a, a); !d.Identical() {
		t.Errorf("self-diff: %+v", d)
	}

	// With digest chains attached the diff localizes.
	a.Digests = digestChain([]uint64{500, 1000}, []string{"aa", "bb"})
	b.Digests = digestChain([]uint64{500, 1000}, []string{"aa", "zz"})
	d = DiffSnapshots(a, b)
	if d.Digests == nil || d.Digests.FirstDivergent != 1 || d.FirstDivergentInterval() != 1 {
		t.Errorf("digest localization: %+v", d.Digests)
	}
}

func TestWriteText(t *testing.T) {
	a := snapshot(1000, map[string]uint64{"hits": 50})
	a.Digests = digestChain([]uint64{500}, []string{"aa"})
	b := snapshot(1100, map[string]uint64{"hits": 60, "extra": 1})
	b.Digests = digestChain([]uint64{500}, []string{"zz"})
	var sb strings.Builder
	if err := DiffSnapshots(a, b).WriteText(&sb, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"first divergent interval  0", "aa vs zz", "added metrics (1):   extra", "hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := DiffSnapshots(a, a).WriteText(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "identical") {
		t.Errorf("identical rendering: %s", sb.String())
	}
}
